// Command qrouter is the cluster front door: a stateless reverse proxy
// that consistent-hashes graph digests across qcongestd shards
// (DESIGN.md §11, API.md "Cluster routing"). Uploads go to the owning
// shard's leader — or are shed with 503 + Retry-After when that leader
// is down, preserving the 2xx-is-a-durability-receipt contract — and
// reads rotate across the shard's in-sync replicas with per-request
// failover. Listings fan out and merge; batches split by shard and
// reassemble in request order.
//
// Usage:
//
//	qrouter -addr 127.0.0.1:8090 \
//	  -peers 'http://127.0.0.1:8080;http://127.0.0.1:8081,http://127.0.0.1:8082;http://127.0.0.1:8083'
//
// -peers is the boot topology: shards separated by commas, each
// shard's replicas separated by semicolons, first replica = leader
// (the one whose -data-dir the others -follow). It becomes the live
// epoch-0 topology; from there the router self-heals — a leader down
// for -promote-after consecutive probe sweeps gets replaced by its
// most-advanced in-sync follower via POST /v1/promote, and a revived
// old leader is demoted back into a follower. -peers-file names a file
// holding the same topology string; SIGHUP re-reads it and swaps the
// layout live (shards keep their promoted leaders when those are still
// listed).
//
// The router serves its own /healthz (ok / degraded / draining),
// /v1/cluster (the live topology descriptor cluster-aware clients
// use), and /metrics (JSON + Prometheus, qrouter_* namespace). It
// drains gracefully on SIGINT/SIGTERM like the daemons.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qcongest/internal/cluster"
)

// loadPeersFile reads a topology string from a file, tolerating
// trailing newlines and full-line # comments.
func loadPeersFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var parts []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts = append(parts, line)
	}
	return strings.Join(parts, ","), nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address")
		peers        = flag.String("peers", "", "shard topology: comma-separated shards of semicolon-separated replica URLs, leader first")
		peersFile    = flag.String("peers-file", "", "file holding the -peers topology string (one or more lines, # comments); SIGHUP reloads it")
		probeEvery   = flag.Duration("probeevery", 500*time.Millisecond, "health-probe cadence per daemon")
		promoteAfter = flag.Int("promote-after", 0, "consecutive failed probe sweeps before a shard leader is replaced by auto-promotion (0 = default 3, negative disables)")
		clusterToken = flag.String("cluster-token", "", "X-Cluster-Token sent on /v1/promote and /v1/demote; must match the daemons' -cluster-token")
		maxBody      = flag.Int64("maxbody", 0, "request body cap in bytes (0 = 64 MiB)")
		maxNodes     = flag.Int("maxnodes", 0, "max nodes per upload parsed for routing (0 = 1<<17; match the daemons)")
		maxEdges     = flag.Int("maxedges", 0, "max edges per upload parsed for routing (0 = 1<<21; match the daemons)")
		fwdTimeout   = flag.Duration("forward-timeout", 0, "per-request backend timeout on the forwarding client (0 = 60s)")
		drainTimeout = flag.Duration("draintimeout", 15*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()

	spec := *peers
	if *peersFile != "" {
		if spec != "" {
			log.Fatal("qrouter: set -peers or -peers-file, not both")
		}
		loaded, err := loadPeersFile(*peersFile)
		if err != nil {
			log.Fatalf("qrouter: reading -peers-file: %v", err)
		}
		spec = loaded
	}
	if spec == "" {
		log.Fatal("qrouter: -peers or -peers-file is required (see -help)")
	}
	topo, err := cluster.ParseTopology(spec)
	if err != nil {
		log.Fatalf("qrouter: %v", err)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Topology:       topo,
		ProbeEvery:     *probeEvery,
		PromoteAfter:   *promoteAfter,
		ClusterToken:   *clusterToken,
		MaxBodyBytes:   *maxBody,
		MaxNodes:       *maxNodes,
		MaxEdges:       *maxEdges,
		ForwardTimeout: *fwdTimeout,
	})
	if err != nil {
		log.Fatalf("qrouter: %v", err)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP: re-read -peers-file and swap the topology live. Without a
	// peers file there is nothing to re-read, but the signal is still
	// drained so an operator's blanket `kill -HUP` does not kill us.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *peersFile == "" {
				log.Printf("qrouter: SIGHUP ignored (no -peers-file to reload)")
				continue
			}
			spec, err := loadPeersFile(*peersFile)
			if err != nil {
				log.Printf("qrouter: SIGHUP reload failed: %v", err)
				continue
			}
			t, err := cluster.ParseTopology(spec)
			if err != nil {
				log.Printf("qrouter: SIGHUP reload failed: %v", err)
				continue
			}
			if err := rt.Reload(t); err != nil {
				log.Printf("qrouter: SIGHUP reload failed: %v", err)
				continue
			}
			log.Printf("qrouter: topology reloaded from %s (%d shards)", *peersFile, len(t.Shards))
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	nodes := 0
	for _, s := range topo.Shards {
		nodes += len(s.Nodes)
	}
	log.Printf("qrouter: routing %d shards / %d nodes on http://%s", len(topo.Shards), nodes, *addr)
	for _, s := range topo.Shards {
		log.Printf("qrouter: shard %s leader %s (%d replicas)", s.Name, s.Leader(), len(s.Nodes))
	}

	select {
	case err := <-errCh:
		log.Fatalf("qrouter: listener failed: %v", err)
	case <-ctx.Done():
	}

	log.Printf("qrouter: draining (deadline %s)", *drainTimeout)
	rt.SetHealthy(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("qrouter: shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("qrouter: serve: %v", err)
	}
	rt.Close()
	signal.Stop(hup)
	close(hup)
	fmt.Println("qrouter: shut down cleanly")
}
