// Command table1 regenerates the paper's Table 1: the complexity of
// computing the diameter and radius in the CONGEST model. Every row
// prints the paper's asymptotic Õ(·)/Ω̃(·) shapes (constants 1), and the
// rows this repository implements additionally print measured rounds on a
// shared workload (experiment E1 in DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/exp"
	"qcongest/internal/graph"
)

func main() {
	var (
		n       = flag.Int("n", 150, "workload size for the measured column")
		d       = flag.Int("d", 6, "reference unweighted diameter for the analytic columns")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "engine worker shards per simulation (0 = sequential)")
		dworkrs = flag.Int("distworkers", 0, "distance-kernel workers per skeleton build (0 = sequential)")
		dkernel = flag.String("distkernel", "auto", "distance-kernel relaxation engine: auto, sparse, dense, or delta")
	)
	flag.Parse()

	// All three knobs are bit-deterministic: they change wall clock,
	// never a measured number.
	congest.DefaultWorkers = *workers
	dist.DefaultSkeletonWorkers = *dworkrs
	kernel, err := graph.ParseKernelMode(*dkernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dist.DefaultKernelMode = kernel

	nf, df := float64(*n), float64(*d)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Fprintf(tw, "Table 1: complexity of diameter/radius in CONGEST (shapes at n=%d, D=%d)\n\n", *n, *d)
	fmt.Fprintln(tw, "problem\tvariant\tapprox\tÕ classical\tÕ quantum\tΩ̃ classical\tΩ̃ quantum\tsource")
	for _, r := range baseline.Table1() {
		mark := ""
		if r.ThisWork {
			mark = "  ← THIS WORK"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s%s\n",
			r.Problem, r.Variant, r.Approx,
			cost(r.UpperClassical, nf, df), cost(r.UpperQuantum, nf, df),
			cost(r.LowerClassical, nf, df), cost(r.LowerQuantum, nf, df),
			r.SourceUpper, mark)
	}
	tw.Flush()

	fmt.Printf("\nMeasured rows (workload: weighted low-diameter random graph, n=%d, seed=%d):\n\n", *n, *seed)
	entries, err := exp.MeasuredTable1(*n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %v\n", err)
		os.Exit(1)
	}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "row\tn\tD\tmeasured rounds\tanalytic shape")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f\n", e.Label, e.N, e.D, e.Measured, e.Analytic)
	}
	tw.Flush()
}

func cost(f baseline.CostFn, n, d float64) string {
	if f == nil {
		return "—"
	}
	return fmt.Sprintf("%.0f", f(n, d))
}
