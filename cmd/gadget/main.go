// Command gadget drives the lower-bound pipeline of §4:
//
//	-fig=1          E6: build the Figure 1 base and verify its structure
//	-fig=2          E7: the diameter gadget and the Lemma 4.4 gap
//	-fig=3          E8: the contracted view and Table 2
//	-fig=4          E9: the radius gadget and the Lemma 4.9 gap
//	-exp=simulation E10: the Lemma 4.1 Server-model simulation
//	-exp=reduction  E11: the end-to-end Theorem 4.2/4.8 decision
//	-exp=formulas   E13: the F/F'/VER/GDT machinery
package main

import (
	"flag"
	"fmt"
	"os"

	"qcongest/internal/exp"
	"qcongest/internal/gadget"
	"qcongest/internal/server"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure to regenerate: 1, 2, 3, or 4")
		which  = flag.String("exp", "", "experiment: simulation, reduction, formulas")
		h      = flag.Int("h", 2, "tree height h (even); n = Θ(2^(3h/2))")
		trials = flag.Int("trials", 4, "number of random inputs")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *fig == 1:
		for _, rep := range exp.Figure1Suite([]int{*h}, *seed) {
			die(rep.Err)
			fmt.Printf("h=%d: n=%d (formula %d), unweighted diameter %d = Θ(h), connected=%v\n",
				rep.H, rep.Structure.N, rep.Structure.NFormula,
				rep.Structure.UnweightedDiameter, rep.Structure.Connected)
		}

	case *fig == 2 || *fig == 4:
		radius := *fig == 4
		name, lemma := "diameter", "4.4"
		if radius {
			name, lemma = "radius", "4.9"
		}
		reps, err := exp.GapExperiment(*h, radius, *trials, *seed)
		die(err)
		fmt.Printf("Lemma %s (%s gadget, h=%d, α=n², β=2n²):\n", lemma, name, *h)
		for i, r := range reps {
			fmt.Printf("  trial %d: %v\n", i, r)
			if !r.Satisfied {
				die(fmt.Errorf("dichotomy violated"))
			}
		}

	case *fig == 3:
		vio, checked, err := exp.Table2Experiment(*h, *trials, *seed)
		die(err)
		fmt.Printf("Table 2 on contracted G' (h=%d): %d inputs checked, %d violations\n", *h, checked, vio)
		if vio > 0 {
			os.Exit(1)
		}

	case *which == "simulation":
		rep, err := exp.SimulationExperiment(*h, *seed)
		die(err)
		fmt.Printf("Lemma 4.1 simulation (h=%d):\n", *h)
		fmt.Printf("  rounds                %d (schedule supports < 2^h/2)\n", rep.Rounds)
		fmt.Printf("  total messages        %d\n", rep.TotalMessages)
		fmt.Printf("  charged (Alice/Bob)   %d  (≤ 2h·T = %d)\n", rep.ChargedMessages, rep.LemmaTotalCap)
		fmt.Printf("  free (server)         %d\n", rep.FreeMessages)
		fmt.Printf("  max charged per round %d  (≤ 2h = %d)\n", rep.MaxChargedPerRnd, rep.LemmaPerRoundCap)
		fmt.Printf("  charged bits          %d  (B = %d)\n", rep.ChargedBits, rep.BitsPerMessage)
		fmt.Printf("  within lemma bounds   %v\n", rep.WithinLemmaBounds)

	case *which == "reduction":
		reps, err := exp.ReductionExperiment(*h, *trials, *seed)
		die(err)
		fmt.Printf("Theorem 4.2/4.8 reduction (h=%d, α=n², β=2n²):\n", *h)
		for _, r := range reps {
			metric := "diameter"
			if r.Radius {
				metric = "radius"
			}
			fmt.Printf("  %-8s estimate=%d threshold=%d decided=%v truth=%v correct=%v (Ω̃ lower bound ≈ %.0f rounds)\n",
				metric, r.Outcome.Estimate, r.Outcome.Threshold, r.Outcome.Decided, r.Outcome.Truth, r.Outcome.Correct, r.LowerBnd)
			if !r.Outcome.Correct {
				os.Exit(1)
			}
		}

	case *which == "formulas":
		rep, err := exp.FormulaExperiment(*h)
		die(err)
		fmt.Printf("Lemma 4.5-4.7 machinery (h=%d):\n", *h)
		fmt.Printf("  F = AND∘(OR∘AND₂): size %d = 2^s·ℓ, read-once %v\n", rep.FSize, rep.FReadOnce)
		fmt.Printf("  F' = OR∘AND₂: read-once %v\n", rep.FpReadOnce)
		fmt.Printf("  VER promise embeds in GDT: %v\n", rep.VEROk)
		n, _ := gadget.NodeCount(*h)
		fmt.Printf("  Qsv lower bound Ω(√(2^s·ℓ)) → Ω̃(n^(2/3)) ≈ %.0f rounds at n=%d\n",
			server.LowerBoundRounds(n), n)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "gadget: %v\n", err)
		os.Exit(1)
	}
}
