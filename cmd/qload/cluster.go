package main

// The cluster mix: qload as the cluster's parity auditor. It drives a
// qrouter front door exactly like an application would — uploads
// through the router, reads through the router — then walks the live
// topology from /v1/cluster and interrogates every replica DIRECTLY,
// asserting the replication contract: every graph lives on exactly one
// shard, and every node of that shard answers byte-identical sketch
// numerators and exact metrics for it. The timed read phase then
// hammers the router and fails the run on any 5xx — the zero-read-loss
// assertion the CI kill/revive smoke leans on.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/cluster"
	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// clusterReport is the cluster section of a -mix cluster report.
type clusterReport struct {
	// Shards and Nodes describe the topology the router disclosed.
	Shards int `json:"shards"`
	Nodes  int `json:"nodes"`
	// Epoch is the router's topology epoch — 0 on a cluster that never
	// promoted, the leadership generation after self-healing.
	Epoch uint64 `json:"epoch"`
	// ChainShardsVerified counts shards whose live replicas converged
	// to one identical (seq, chain) position — the digest-chain receipt
	// that no acknowledged write was lost or reordered anywhere.
	ChainShardsVerified int `json:"chainShardsVerified"`
	// Graphs is the distinct workload graphs uploaded through the router.
	Graphs int `json:"graphs"`
	// ParityChecks counts digest×replica comparisons that were verified
	// byte-identical against the router's own answers.
	ParityChecks int `json:"parityChecks"`
	// DeadSkipped counts digest×replica comparisons skipped because the
	// router reports the replica down (expected mid-fault-injection: a
	// killed follower is not a parity violation, its survivors are the
	// ones that must still agree).
	DeadSkipped int `json:"deadSkipped"`
	// LaggingSkipped counts digest×replica comparisons skipped because
	// the replica was still catching up when the parity deadline hit
	// (always 0 on a healthy cluster; any skip fails the run).
	LaggingSkipped int `json:"laggingSkipped"`
}

// clusterConfig carries the flag surface of one cluster-mix run.
type clusterConfig struct {
	addr     string
	graphs   int
	n        int
	requests int
	conc     int
	seed     int64
	out      string
	apiKey   string
	expectID bool
}

func runCluster(cfg clusterConfig) {
	client := svc.NewClient(cfg.addr)
	client.APIKey = cfg.apiKey
	client.RequireRequestID = cfg.expectID
	waitHealthy(client)

	if cfg.n < 8 {
		log.Fatalf("qload: cluster mix needs -n >= 8, got %d", cfg.n)
	}
	skReq := svc.SketchRequest{Sources: []int{0, 1, 2, 3}, L: 8, K: 4}

	// --- Upload phase: distinct graphs through the router. ---

	rng := rand.New(rand.NewSource(cfg.seed))
	type workload struct {
		digest   string
		diameter int64
		sketch   svc.SketchResponse
	}
	graphsByDigest := map[string]*graph.Graph{}
	var works []*workload
	for i := 0; i < cfg.graphs; i++ {
		g := graph.RandomWeights(graph.RandomConnected(cfg.n, 4*cfg.n, rng), 16, rng)
		up, err := client.UploadWire(g, true)
		if err != nil {
			log.Fatalf("qload: cluster upload %d: %v", i, err)
		}
		if _, dup := graphsByDigest[up.Digest]; dup {
			continue // the rng collided; fewer distinct graphs is fine
		}
		graphsByDigest[up.Digest] = g
		works = append(works, &workload{digest: up.Digest})
	}
	// Idempotency must hold through the router: the re-upload routes to
	// the same shard and answers Created=false.
	for d, g := range graphsByDigest {
		up, err := client.Upload(g)
		if err != nil {
			log.Fatalf("qload: cluster re-upload: %v", err)
		}
		if up.Created || up.Digest != d {
			log.Fatalf("qload: FAILED — re-upload of %s through the router answered created=%v digest=%s", d, up.Created, up.Digest)
		}
		break
	}

	// Reference answers, computed once through the router.
	for _, wk := range works {
		var err error
		if wk.diameter, err = client.Diameter(wk.digest); err != nil {
			log.Fatalf("qload: cluster reference diameter(%s): %v", wk.digest, err)
		}
		if wk.sketch, err = client.Sketch(wk.digest, skReq); err != nil {
			log.Fatalf("qload: cluster reference sketch(%s): %v", wk.digest, err)
		}
	}

	// --- Parity phase: interrogate every replica directly. ---

	var info cluster.ClusterInfo
	resp, err := http.Get(client.BaseURL + "/v1/cluster")
	if err != nil {
		log.Fatalf("qload: fetching /v1/cluster: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("qload: decoding /v1/cluster: %v", err)
	}
	crep := clusterReport{Shards: len(info.Shards), Graphs: len(works), Epoch: info.Epoch}
	for _, s := range info.Shards {
		crep.Nodes += len(s.Nodes)
	}

	// Ownership: each digest must be on exactly one shard's leader.
	owners := map[string]int{}
	for si, s := range info.Shards {
		lc := svc.NewClient(s.Leader)
		lc.APIKey = cfg.apiKey
		infos, err := lc.Graphs()
		if err != nil {
			log.Fatalf("qload: listing shard %s leader: %v", s.Name, err)
		}
		for _, gi := range infos {
			if _, ours := graphsByDigest[gi.Digest]; !ours {
				continue // pre-existing graphs are not part of this audit
			}
			if prev, dup := owners[gi.Digest]; dup {
				log.Fatalf("qload: FAILED — digest %s is on shards %s and %s", gi.Digest, info.Shards[prev].Name, s.Name)
			}
			owners[gi.Digest] = si
		}
	}
	if len(owners) != len(works) {
		log.Fatalf("qload: FAILED — %d of %d uploaded graphs are on some shard leader", len(owners), len(works))
	}

	// nodeAlive re-reads the router's live view of one node: a replica
	// that dies (or is killed by the fault-injection smoke) mid-audit is
	// skipped, not failed — the survivors are the ones that must agree.
	nodeAlive := func(url string) bool {
		var fresh cluster.ClusterInfo
		resp, err := http.Get(client.BaseURL + "/v1/cluster")
		if err != nil {
			return true // the router itself is the run's failure domain
		}
		err = json.NewDecoder(resp.Body).Decode(&fresh)
		resp.Body.Close()
		if err != nil {
			return true
		}
		for _, s := range fresh.Shards {
			for _, nd := range s.Nodes {
				if nd.URL == url {
					return nd.Alive
				}
			}
		}
		return true
	}

	// Every node of the owning shard — leader and followers alike — must
	// answer the router's own answers byte for byte. Followers get a
	// catch-up deadline; a replica still lagging past it fails the run.
	deadline := time.Now().Add(30 * time.Second)
	for _, wk := range works {
		shard := info.Shards[owners[wk.digest]]
		for _, nd := range shard.Nodes {
			nc := svc.NewClient(nd.URL)
			nc.APIKey = cfg.apiKey
			for {
				dia, derr := nc.Diameter(wk.digest)
				sk, serr := nc.Sketch(wk.digest, skReq)
				if derr == nil && serr == nil {
					if dia != wk.diameter {
						log.Fatalf("qload: FAILED — %s %s answers diameter %d for %s, router answered %d",
							nd.Role, nd.URL, dia, wk.digest, wk.diameter)
					}
					if sk.Den != wk.sketch.Den || !reflect.DeepEqual(sk.Eccentricities, wk.sketch.Eccentricities) {
						log.Fatalf("qload: FAILED — %s %s answers different sketch numerators for %s than the router",
							nd.Role, nd.URL, wk.digest)
					}
					crep.ParityChecks++
					break
				}
				// Any error — a 404 from a follower still applying the
				// record, or a transport error from a node mid-restart —
				// retries until the deadline, unless the router itself
				// reports the node down, in which case the fault-injection
				// smoke killed it and the survivors carry the audit.
				if !nodeAlive(nd.URL) {
					crep.DeadSkipped++
					log.Printf("qload: skipping dead replica %s for %s (router reports it down)", nd.URL, wk.digest)
					break
				}
				if time.Now().After(deadline) {
					crep.LaggingSkipped++
					log.Printf("qload: replica %s never served %s (diameter err: %v, sketch err: %v)", nd.URL, wk.digest, derr, serr)
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}
	if crep.LaggingSkipped > 0 {
		log.Fatalf("qload: FAILED — %d digest×replica parity checks never converged", crep.LaggingSkipped)
	}
	fmt.Printf("qload cluster: parity verified — %d graphs × every replica of %d shards (%d checks, all byte-identical)\n",
		crep.Graphs, crep.Shards, crep.ParityChecks)

	// --- Chain parity: every live replica of a shard must converge to
	// one identical (seq, chain) position. The chain is a running fold
	// over every committed (seq, digest) pair, so equality here is a
	// receipt that no acknowledged write was lost or reordered — even
	// across a leader kill, auto-promotion, and old-leader re-sync. ---

	nodeHealth := func(url string) (svc.HealthResponse, error) {
		var h svc.HealthResponse
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			return h, err
		}
		defer resp.Body.Close()
		return h, json.NewDecoder(resp.Body).Decode(&h)
	}
	chainDeadline := time.Now().Add(30 * time.Second)
	for _, s := range info.Shards {
		for {
			positions := map[string]string{}
			uniq := map[string]bool{}
			durable := true
			for _, nd := range s.Nodes {
				if !nodeAlive(nd.URL) {
					continue // killed mid-smoke: the survivors carry the audit
				}
				h, err := nodeHealth(nd.URL)
				if err != nil {
					durable = false // mid-restart; next round retries
					break
				}
				if h.Replication == nil {
					durable = false // in-memory node: no chain to audit
					break
				}
				positions[nd.URL] = fmt.Sprintf("seq=%d chain=%s", h.Replication.Seq, h.Replication.Chain)
				uniq[positions[nd.URL]] = true
			}
			if durable && len(uniq) == 1 {
				crep.ChainShardsVerified++
				break
			}
			if !durable && time.Now().After(chainDeadline) {
				break // in-memory shard (or one that never settled): not audited
			}
			if time.Now().After(chainDeadline) {
				log.Fatalf("qload: FAILED — shard %s replicas never converged to one (seq, chain) position: %v", s.Name, positions)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if crep.ChainShardsVerified > 0 {
		fmt.Printf("qload cluster: chain parity verified — %d shards at one (seq, chain) position each (topology epoch %d)\n",
			crep.ChainShardsVerified, crep.Epoch)
	}

	// --- Timed read phase through the router: any 5xx fails the run. ---

	var (
		next                     atomic.Int64
		err4, err5, sat, limited atomic.Int64
	)
	latencies := make([][]time.Duration, cfg.conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					return
				}
				wk := works[int(i)%len(works)]
				t0 := time.Now()
				var err error
				if i%4 == 3 {
					_, err = client.Sketch(wk.digest, skReq)
				} else {
					var dia int64
					dia, err = client.Diameter(wk.digest)
					if err == nil && dia != wk.diameter {
						log.Fatalf("qload: FAILED — read %d of %s answered diameter %d, expected %d", i, wk.digest, dia, wk.diameter)
					}
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				var se *svc.StatusError
				if errors.As(err, &se) {
					switch {
					case se.Code == 503:
						sat.Add(1)
					case se.Code == 429:
						limited.Add(1)
					case se.Code >= 500:
						err5.Add(1)
					default:
						err4.Add(1)
					}
				} else if err != nil {
					err5.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(q*float64(len(all)-1))]) / float64(time.Millisecond)
	}

	rep := report{
		Mix:             "cluster",
		Concurrency:     cfg.conc,
		Requests:        int64(len(all)),
		Errors4xx:       err4.Load(),
		Errors5xx:       err5.Load(),
		Saturated503:    sat.Load(),
		RateLimited429:  limited.Load(),
		DurationSeconds: elapsed.Seconds(),
		QPS:             float64(len(all)) / elapsed.Seconds(),
		P50Ms:           quantile(0.50),
		P99Ms:           quantile(0.99),
		Cluster:         &crep,
	}
	fmt.Printf("qload cluster: %d reads in %.2fs — %.1f qps, p50 %.3fms, p99 %.3fms (4xx=%d 5xx=%d 503=%d 429=%d)\n",
		rep.Requests, rep.DurationSeconds, rep.QPS, rep.P50Ms, rep.P99Ms,
		rep.Errors4xx, rep.Errors5xx, rep.Saturated503, rep.RateLimited429)

	if cfg.out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(cfg.out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("qload: writing %s: %v", cfg.out, err)
		}
	}
	// Reads through the router must never surface a 5xx: that is the
	// whole point of replica failover. (503 write sheds do not appear
	// here — the read phase is reads only.)
	if rep.Errors5xx > 0 {
		log.Fatalf("qload: FAILED — %d cluster reads drew 5xx", rep.Errors5xx)
	}
	if bad := rep.Errors4xx + rep.Saturated503; bad > 0 {
		log.Fatalf("qload: FAILED — %d cluster reads did not succeed (4xx=%d 503=%d)", bad, rep.Errors4xx, rep.Saturated503)
	}
	if rep.Requests == 0 {
		log.Fatalf("qload: FAILED — no request succeeded")
	}
}
