// Command qload is the load generator for qcongestd: it registers a
// workload graph, fires a configurable request mix at the daemon from
// concurrent workers, and reports sustained throughput and latency
// quantiles (optionally as JSON for BENCH_svc.json).
//
// Mixes:
//
//	warm   primes one sketch and the exact metrics, then issues only
//	       cache-hit reads (diameter/radius/eccentricity/sketch on the
//	       primed key) — the steady-state serving regime.
//	cold   every request is a sketch with a fresh source set, so every
//	       request is a build and the cache churns under eviction.
//	mixed  80% warm reads, 20% cold builds — the admission-control
//	       regime where builds must not starve reads.
//	cluster drives a qrouter front door instead of one daemon: uploads
//	       -graphs distinct graphs through the router, walks the live
//	       topology from /v1/cluster and asserts every replica of the
//	       owning shard answers byte-identical sketch numerators and
//	       exact metrics (the replication parity contract), then runs a
//	       timed read phase through the router where any 5xx fails the
//	       run — the zero-read-loss assertion behind the kill/revive
//	       smoke.
//	ingest every request is a graph upload: qload generates one
//	       workload graph client-side (-edges edges), pre-encodes it
//	       once per requested -codec (json, text, binary), and replays
//	       that body -requests times per codec, reporting edges/sec
//	       and MB/sec per codec. Before the timed runs it uploads the
//	       graph through every codec once and asserts all answer the
//	       same digest with byte-identical sketch numerators — the
//	       cross-codec parity contract, live against the daemon.
//
// qload exits non-zero if any request draws a 5xx or if no request
// succeeds, which is what the CI smoke step asserts.
//
// With -expectrestart the warm mix becomes restart-aware: qload asserts
// its workload graph was recovered by the daemon from a durable data
// dir (the registration answers Created == false) instead of being
// created fresh — the client half of the crash-recovery smoke: boot
// with -data-dir, load, SIGKILL, reboot, re-run qload -expectrestart.
//
// -apikey attributes the run's traffic to one API key (the daemon's
// per-key rate limits and quotas apply); 429s are tallied separately
// as rateLimited429 and count as back-pressure, not failures.
// -expectreqid asserts the observability contract request by request:
// any response without an X-Request-Id header fails the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// ingestReport is one codec's leg of an ingest-mix run.
type ingestReport struct {
	// Codec is the wire form this leg replayed: json (legacy wrapper),
	// text (raw edge list), or binary.
	Codec string `json:"codec"`
	// Uploads is the number of completed upload requests.
	Uploads int64 `json:"uploads"`
	// EdgesPerUpload and BodyBytes describe the one pre-encoded body
	// every request carried.
	EdgesPerUpload int     `json:"edgesPerUpload"`
	BodyBytes      int     `json:"bodyBytes"`
	BytesPerEdge   float64 `json:"bytesPerEdge"`
	// EdgesPerSec is the sustained decode rate: edges the daemon
	// parsed, validated, and digest-addressed per second.
	EdgesPerSec float64 `json:"edgesPerSec"`
	// WireMBPerSec is raw request-body throughput (this codec's bytes).
	WireMBPerSec float64 `json:"wireMBPerSec"`
	// TextMBPerSec prices the same edge stream at the text codec's
	// byte cost — the codec-neutral ingest rate, comparable across
	// legs (for text itself it equals WireMBPerSec).
	TextMBPerSec    float64 `json:"textEquivalentMBPerSec"`
	DurationSeconds float64 `json:"durationSeconds"`
	P50Ms           float64 `json:"p50Ms"`
	P99Ms           float64 `json:"p99Ms"`
}

// report is the JSON summary (-out) of one run.
type report struct {
	Mix             string  `json:"mix"`
	Concurrency     int     `json:"concurrency"`
	Requests        int64   `json:"requests"`
	Errors4xx       int64   `json:"errors4xx"`
	Errors5xx       int64   `json:"errors5xx"`
	Saturated503    int64   `json:"saturated503"`
	RateLimited429  int64   `json:"rateLimited429"`
	DurationSeconds float64 `json:"durationSeconds"`
	QPS             float64 `json:"qps"`
	P50Ms           float64 `json:"p50Ms"`
	P99Ms           float64 `json:"p99Ms"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	// Ingest holds the per-codec legs of an ingest-mix run (absent for
	// the read mixes).
	Ingest []ingestReport `json:"ingest,omitempty"`
	// Cluster holds the topology/parity section of a cluster-mix run.
	Cluster *clusterReport `json:"cluster,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		mix      = flag.String("mix", "warm", "request mix: warm, cold, or mixed")
		conc     = flag.Int("c", 8, "concurrent workers")
		requests = flag.Int("requests", 200, "total requests (ignored when -duration > 0)")
		duration = flag.Duration("duration", 0, "run for a fixed wall-clock time instead of a request count")
		n        = flag.Int("n", 256, "workload graph size")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "", "write the JSON report to this file")
		expectRe = flag.Bool("expectrestart", false, "assert the workload graph was recovered from a durable data dir, not created fresh")
		apiKey   = flag.String("apikey", "", "X-API-Key for every request (empty shares the daemon's anonymous bucket)")
		expectID = flag.Bool("expectreqid", false, "fail the run if any response arrives without an X-Request-Id header")
		skModes  = flag.String("sketchmode", "", "comma-separated kernel modes for sketch requests (auto, sparse, dense, delta); empty uses the daemon default. With several, warm sketches round-robin the modes and qload asserts their numerators are byte-identical")
		codecs   = flag.String("codec", "binary", "comma-separated upload codecs for the ingest mix: json, text, binary")
		edges    = flag.Int("edges", 65536, "ingest workload graph edge count (ingest mix only; nodes = edges/8)")
		order    = flag.String("order", "sorted", "ingest workload edge insertion order: sorted (the canonical bulk-export layout, where the binary codec omits its permutation section) or random")
		nGraphs  = flag.Int("graphs", 8, "cluster mix: distinct workload graphs uploaded through the router")
	)
	flag.Parse()
	switch *mix {
	case "warm", "cold", "mixed":
	case "cluster":
		runCluster(clusterConfig{
			addr: *addr, graphs: *nGraphs, n: *n, requests: *requests,
			conc: *conc, seed: *seed, out: *out, apiKey: *apiKey, expectID: *expectID,
		})
		return
	case "ingest":
		runIngest(ingestConfig{
			addr: *addr, codecs: strings.Split(*codecs, ","), edges: *edges,
			order: *order, requests: *requests, conc: *conc, seed: *seed,
			out: *out, apiKey: *apiKey, expectID: *expectID, expectRestart: *expectRe,
		})
		return
	default:
		log.Fatalf("qload: unknown -mix %q", *mix)
	}
	// modes holds the wire spellings of -sketchmode ("" = daemon
	// default); every sketch request in the run pins one of them.
	modes := []string{""}
	if *skModes != "" {
		modes = strings.Split(*skModes, ",")
		for _, m := range modes {
			if _, err := graph.ParseKernelMode(m); err != nil {
				log.Fatalf("qload: -sketchmode: %v", err)
			}
		}
	}

	client := svc.NewClient(*addr)
	client.APIKey = *apiKey
	client.RequireRequestID = *expectID
	waitHealthy(client)

	// Registration is idempotent on the digest, so re-running against a
	// daemon that recovered the graph from disk answers Created=false.
	up, err := client.Generate(svc.GenSpec{Kind: "lowdiameter", N: *n, AvgDeg: 4, MaxW: 16, Seed: *seed})
	if err != nil {
		log.Fatalf("qload: registering workload graph: %v", err)
	}
	if *expectRe && up.Created {
		log.Fatalf("qload: FAILED — expected the daemon to have recovered graph %s from its data dir, but it was created fresh", up.Digest)
	}
	digest := up.Digest
	warmSketch := func(mode string) svc.SketchRequest {
		return svc.SketchRequest{Sources: []int{0, 1, 2, 3}, L: 8, K: 4, Kernel: mode}
	}

	// Prime the warm paths so the warm mix measures steady state — one
	// sketch build per requested kernel mode (distinct cache lines), and
	// with several modes assert the determinism contract end to end:
	// same digest + params must answer byte-identical numerators
	// whatever engine built the sketch.
	if *mix != "cold" {
		if _, err := client.Diameter(digest); err != nil {
			log.Fatalf("qload: priming metrics: %v", err)
		}
		var ref svc.SketchResponse
		for j, m := range modes {
			resp, err := client.Sketch(digest, warmSketch(m))
			if err != nil {
				log.Fatalf("qload: priming sketch (mode %q): %v", m, err)
			}
			if j == 0 {
				ref = resp
				continue
			}
			if resp.Den != ref.Den || !reflect.DeepEqual(resp.Eccentricities, ref.Eccentricities) {
				log.Fatalf("qload: FAILED — kernel mode %q answered different numerators than mode %q for the same digest+params", m, modes[0])
			}
		}
	}

	var (
		next                     atomic.Int64
		err4, err5, sat, limited atomic.Int64
		deadline                 time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	stop := func(i int64) bool {
		if *duration > 0 {
			return time.Now().After(deadline)
		}
		return i >= int64(*requests)
	}

	// coldSketch derives a distinct source set (hence a distinct cache
	// key) from the request index; kernel modes round-robin.
	coldSketch := func(i int64) svc.SketchRequest {
		base := int(i % int64(*n))
		return svc.SketchRequest{
			Sources: []int{base, (base + 7) % *n, (base + 13) % *n},
			L:       8,
			K:       3,
			Kernel:  modes[int(i)%len(modes)],
		}
	}

	oneRequest := func(i int64) error {
		kind := i % 10
		switch *mix {
		case "cold":
			_, err := client.Sketch(digest, coldSketch(i))
			return err
		case "mixed":
			if kind < 2 {
				_, err := client.Sketch(digest, coldSketch(i))
				return err
			}
		}
		switch kind % 4 {
		case 0:
			_, err := client.Diameter(digest)
			return err
		case 1:
			_, err := client.Radius(digest)
			return err
		case 2:
			_, err := client.Eccentricity(digest, int(i)%*n)
			return err
		default:
			// Round-robin the primed modes: every requested engine's
			// cache line stays hot under the warm mix.
			_, err := client.Sketch(digest, warmSketch(modes[int(i)%len(modes)]))
			return err
		}
	}

	latencies := make([][]time.Duration, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if stop(i) {
					return
				}
				t0 := time.Now()
				err := oneRequest(i)
				latencies[w] = append(latencies[w], time.Since(t0))
				var se *svc.StatusError
				if errors.As(err, &se) {
					switch {
					case se.Code == 503:
						sat.Add(1)
					case se.Code == 429:
						// Back-pressure, not breakage: the daemon shed this
						// key's overflow exactly as configured.
						limited.Add(1)
					case se.Code >= 500:
						err5.Add(1)
					default:
						err4.Add(1)
					}
				} else if err != nil {
					err5.Add(1) // transport failure: treat as a server-side loss
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(q * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}

	rep := report{
		Mix:             *mix,
		Concurrency:     *conc,
		Requests:        int64(len(all)),
		Errors4xx:       err4.Load(),
		Errors5xx:       err5.Load(),
		Saturated503:    sat.Load(),
		RateLimited429:  limited.Load(),
		DurationSeconds: elapsed.Seconds(),
		QPS:             float64(len(all)) / elapsed.Seconds(),
		P50Ms:           quantile(0.50),
		P99Ms:           quantile(0.99),
	}
	if m, err := client.Metrics(); err == nil {
		rep.CacheHitRate = m.Cache.HitRate
	}

	fmt.Printf("qload %s: %d requests in %.2fs — %.1f qps, p50 %.3fms, p99 %.3fms (4xx=%d 5xx=%d 503=%d 429=%d, cache hit rate %.3f)\n",
		rep.Mix, rep.Requests, rep.DurationSeconds, rep.QPS, rep.P50Ms, rep.P99Ms,
		rep.Errors4xx, rep.Errors5xx, rep.Saturated503, rep.RateLimited429, rep.CacheHitRate)

	if *out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("qload: writing %s: %v", *out, err)
		}
	}
	success := rep.Requests - rep.Errors4xx - rep.Errors5xx - rep.Saturated503 - rep.RateLimited429
	if rep.Errors5xx > 0 {
		log.Fatalf("qload: FAILED — %d requests drew 5xx", rep.Errors5xx)
	}
	if success <= 0 {
		log.Fatalf("qload: FAILED — no request succeeded")
	}
}

// ingestConfig carries the flag surface of one ingest-mix run.
type ingestConfig struct {
	addr          string
	codecs        []string
	edges         int
	order         string
	requests      int
	conc          int
	seed          int64
	out           string
	apiKey        string
	expectID      bool
	expectRestart bool
}

// runIngest drives the ingest mix: one client-side workload graph,
// pre-encoded once per codec, replayed -requests times per codec so the
// daemon decodes, validates, and digest-addresses the same edge stream
// under every wire form. The timed legs never re-encode — the
// measurement is the server-side ingest path, not the client encoder.
func runIngest(cfg ingestConfig) {
	client := svc.NewClient(cfg.addr)
	client.APIKey = cfg.apiKey
	client.RequireRequestID = cfg.expectID
	waitHealthy(client)

	// The workload graph: connected, average degree ~16, weights in
	// [1, 16]. Edge count is what prices the codecs; topology is not
	// under test here.
	rng := rand.New(rand.NewSource(cfg.seed))
	n := cfg.edges / 8
	if n < 16 {
		n = 16
	}
	if cfg.edges < n {
		log.Fatalf("qload: -edges %d below the minimum %d", cfg.edges, n)
	}
	g := graph.RandomWeights(graph.RandomConnected(n, cfg.edges, rng), 16, rng)
	switch cfg.order {
	case "sorted":
		// Re-insert the edges in sorted (u, v) order — the layout every
		// bulk exporter produces, including this service's own binary
		// download. FormatBinary detects it and omits the permutation
		// section, so this leg measures the canonical fast path; -order
		// random keeps the generator's arbitrary order and prices the
		// permuted decode instead.
		es := append([]graph.Edge(nil), g.Edges()...)
		sort.Slice(es, func(i, j int) bool {
			if es[i].U != es[j].U {
				return es[i].U < es[j].U
			}
			return es[i].V < es[j].V
		})
		sg := graph.New(g.N())
		for _, e := range es {
			sg.MustAddEdge(e.U, e.V, e.W)
		}
		g = sg
	case "random":
	default:
		log.Fatalf("qload: unknown -order %q (want sorted or random)", cfg.order)
	}
	m := g.M()
	textBytes := len(graph.FormatEdgeListVersioned(g))

	type leg struct {
		codec string
		body  []byte
		ct    string
	}
	var legs []leg
	for _, c := range cfg.codecs {
		switch strings.TrimSpace(c) {
		case "json":
			body, err := json.Marshal(svc.UploadRequest{EdgeList: graph.FormatEdgeList(g)})
			if err != nil {
				log.Fatalf("qload: encoding json body: %v", err)
			}
			legs = append(legs, leg{"json", body, "application/json"})
		case "text":
			legs = append(legs, leg{"text", graph.FormatEdgeListVersioned(g), "application/x-qcongest-edgelist"})
		case "binary":
			legs = append(legs, leg{"binary", graph.FormatBinary(g), "application/x-qcongest-graph"})
		default:
			log.Fatalf("qload: unknown -codec %q (want json, text, or binary)", c)
		}
	}

	// Cross-codec parity, live against the daemon: every codec's upload
	// of the same graph must land on the same digest (only the first
	// may create it), and the sketch on that digest must answer
	// byte-identical numerators after each codec's upload.
	var digest string
	var refSketch svc.SketchResponse
	skReq := svc.SketchRequest{Sources: []int{0, 1, 2, 3}, L: 8, K: 4}
	for i, l := range legs {
		up, err := client.UploadRaw(l.body, l.ct)
		if err != nil {
			log.Fatalf("qload: %s parity upload: %v", l.codec, err)
		}
		if i == 0 {
			if cfg.expectRestart && up.Created {
				log.Fatalf("qload: FAILED — expected the daemon to have recovered graph %s from its data dir, but it was created fresh", up.Digest)
			}
			digest = up.Digest
		} else if up.Digest != digest {
			log.Fatalf("qload: FAILED — codec %s answered digest %s where codec %s answered %s for the same graph", l.codec, up.Digest, legs[0].codec, digest)
		} else if up.Created {
			log.Fatalf("qload: FAILED — %s re-upload of digest %s claims it created the graph", l.codec, digest)
		}
		sk, err := client.Sketch(digest, skReq)
		if err != nil {
			log.Fatalf("qload: %s parity sketch: %v", l.codec, err)
		}
		if i == 0 {
			refSketch = sk
		} else if sk.Den != refSketch.Den || !reflect.DeepEqual(sk.Eccentricities, refSketch.Eccentricities) {
			log.Fatalf("qload: FAILED — sketch numerators diverged after the %s upload of digest %s", l.codec, digest)
		}
	}

	rep := report{Mix: "ingest", Concurrency: cfg.conc}
	var totalElapsed float64
	for _, l := range legs {
		var (
			next                     atomic.Int64
			err4, err5, sat, limited atomic.Int64
		)
		latencies := make([][]time.Duration, cfg.conc)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < cfg.conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(cfg.requests) {
						return
					}
					t0 := time.Now()
					_, err := client.UploadRaw(l.body, l.ct)
					latencies[w] = append(latencies[w], time.Since(t0))
					var se *svc.StatusError
					if errors.As(err, &se) {
						switch {
						case se.Code == 503:
							sat.Add(1)
						case se.Code == 429:
							limited.Add(1)
						case se.Code >= 500:
							err5.Add(1)
						default:
							err4.Add(1)
						}
					} else if err != nil {
						err5.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()

		var all []time.Duration
		for _, ls := range latencies {
			all = append(all, ls...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		quantile := func(q float64) float64 {
			if len(all) == 0 {
				return 0
			}
			return float64(all[int(q*float64(len(all)-1))]) / float64(time.Millisecond)
		}
		ups := int64(len(all))
		ir := ingestReport{
			Codec:           l.codec,
			Uploads:         ups,
			EdgesPerUpload:  m,
			BodyBytes:       len(l.body),
			BytesPerEdge:    float64(len(l.body)) / float64(m),
			EdgesPerSec:     float64(m) * float64(ups) / elapsed,
			WireMBPerSec:    float64(len(l.body)) * float64(ups) / elapsed / 1e6,
			TextMBPerSec:    float64(textBytes) * float64(ups) / elapsed / 1e6,
			DurationSeconds: elapsed,
			P50Ms:           quantile(0.50),
			P99Ms:           quantile(0.99),
		}
		rep.Ingest = append(rep.Ingest, ir)
		rep.Requests += ups
		rep.Errors4xx += err4.Load()
		rep.Errors5xx += err5.Load()
		rep.Saturated503 += sat.Load()
		rep.RateLimited429 += limited.Load()
		totalElapsed += elapsed

		fmt.Printf("qload ingest %-6s: %d uploads x %d edges (%.2f B/edge) in %.2fs — %.0f edges/sec, %.1f MB/s wire (%.1f MB/s text-equivalent), p50 %.1fms, p99 %.1fms\n",
			ir.Codec, ir.Uploads, ir.EdgesPerUpload, ir.BytesPerEdge, ir.DurationSeconds,
			ir.EdgesPerSec, ir.WireMBPerSec, ir.TextMBPerSec, ir.P50Ms, ir.P99Ms)
	}
	rep.DurationSeconds = totalElapsed
	if rep.DurationSeconds > 0 {
		rep.QPS = float64(rep.Requests) / rep.DurationSeconds
	}

	if cfg.out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(cfg.out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("qload: writing %s: %v", cfg.out, err)
		}
	}
	// Every upload must succeed: a 4xx here means a codec path is
	// broken, not a client mistake.
	if bad := rep.Errors4xx + rep.Errors5xx + rep.Saturated503 + rep.RateLimited429; bad > 0 {
		log.Fatalf("qload: FAILED — %d of %d ingest uploads did not succeed (4xx=%d 5xx=%d 503=%d 429=%d)",
			bad, rep.Requests, rep.Errors4xx, rep.Errors5xx, rep.Saturated503, rep.RateLimited429)
	}
	if rep.Requests == 0 {
		log.Fatalf("qload: FAILED — no request succeeded")
	}
}

// waitHealthy polls /healthz until the daemon answers ok (the CI smoke
// starts qload right after the daemon process).
func waitHealthy(c *svc.Client) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health()
		if err == nil && h.Status == "ok" {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("qload: daemon never became healthy: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
