// Command qload is the load generator for qcongestd: it registers a
// workload graph, fires a configurable request mix at the daemon from
// concurrent workers, and reports sustained throughput and latency
// quantiles (optionally as JSON for BENCH_svc.json).
//
// Mixes:
//
//	warm   primes one sketch and the exact metrics, then issues only
//	       cache-hit reads (diameter/radius/eccentricity/sketch on the
//	       primed key) — the steady-state serving regime.
//	cold   every request is a sketch with a fresh source set, so every
//	       request is a build and the cache churns under eviction.
//	mixed  80% warm reads, 20% cold builds — the admission-control
//	       regime where builds must not starve reads.
//
// qload exits non-zero if any request draws a 5xx or if no request
// succeeds, which is what the CI smoke step asserts.
//
// With -expectrestart the warm mix becomes restart-aware: qload asserts
// its workload graph was recovered by the daemon from a durable data
// dir (the registration answers Created == false) instead of being
// created fresh — the client half of the crash-recovery smoke: boot
// with -data-dir, load, SIGKILL, reboot, re-run qload -expectrestart.
//
// -apikey attributes the run's traffic to one API key (the daemon's
// per-key rate limits and quotas apply); 429s are tallied separately
// as rateLimited429 and count as back-pressure, not failures.
// -expectreqid asserts the observability contract request by request:
// any response without an X-Request-Id header fails the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// report is the JSON summary (-out) of one run.
type report struct {
	Mix             string  `json:"mix"`
	Concurrency     int     `json:"concurrency"`
	Requests        int64   `json:"requests"`
	Errors4xx       int64   `json:"errors4xx"`
	Errors5xx       int64   `json:"errors5xx"`
	Saturated503    int64   `json:"saturated503"`
	RateLimited429  int64   `json:"rateLimited429"`
	DurationSeconds float64 `json:"durationSeconds"`
	QPS             float64 `json:"qps"`
	P50Ms           float64 `json:"p50Ms"`
	P99Ms           float64 `json:"p99Ms"`
	CacheHitRate    float64 `json:"cacheHitRate"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		mix      = flag.String("mix", "warm", "request mix: warm, cold, or mixed")
		conc     = flag.Int("c", 8, "concurrent workers")
		requests = flag.Int("requests", 200, "total requests (ignored when -duration > 0)")
		duration = flag.Duration("duration", 0, "run for a fixed wall-clock time instead of a request count")
		n        = flag.Int("n", 256, "workload graph size")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "", "write the JSON report to this file")
		expectRe = flag.Bool("expectrestart", false, "assert the workload graph was recovered from a durable data dir, not created fresh")
		apiKey   = flag.String("apikey", "", "X-API-Key for every request (empty shares the daemon's anonymous bucket)")
		expectID = flag.Bool("expectreqid", false, "fail the run if any response arrives without an X-Request-Id header")
		skModes  = flag.String("sketchmode", "", "comma-separated kernel modes for sketch requests (auto, sparse, dense, delta); empty uses the daemon default. With several, warm sketches round-robin the modes and qload asserts their numerators are byte-identical")
	)
	flag.Parse()
	if *mix != "warm" && *mix != "cold" && *mix != "mixed" {
		log.Fatalf("qload: unknown -mix %q", *mix)
	}
	// modes holds the wire spellings of -sketchmode ("" = daemon
	// default); every sketch request in the run pins one of them.
	modes := []string{""}
	if *skModes != "" {
		modes = strings.Split(*skModes, ",")
		for _, m := range modes {
			if _, err := graph.ParseKernelMode(m); err != nil {
				log.Fatalf("qload: -sketchmode: %v", err)
			}
		}
	}

	client := svc.NewClient(*addr)
	client.APIKey = *apiKey
	client.RequireRequestID = *expectID
	waitHealthy(client)

	// Registration is idempotent on the digest, so re-running against a
	// daemon that recovered the graph from disk answers Created=false.
	up, err := client.Generate(svc.GenSpec{Kind: "lowdiameter", N: *n, AvgDeg: 4, MaxW: 16, Seed: *seed})
	if err != nil {
		log.Fatalf("qload: registering workload graph: %v", err)
	}
	if *expectRe && up.Created {
		log.Fatalf("qload: FAILED — expected the daemon to have recovered graph %s from its data dir, but it was created fresh", up.Digest)
	}
	digest := up.Digest
	warmSketch := func(mode string) svc.SketchRequest {
		return svc.SketchRequest{Sources: []int{0, 1, 2, 3}, L: 8, K: 4, Kernel: mode}
	}

	// Prime the warm paths so the warm mix measures steady state — one
	// sketch build per requested kernel mode (distinct cache lines), and
	// with several modes assert the determinism contract end to end:
	// same digest + params must answer byte-identical numerators
	// whatever engine built the sketch.
	if *mix != "cold" {
		if _, err := client.Diameter(digest); err != nil {
			log.Fatalf("qload: priming metrics: %v", err)
		}
		var ref svc.SketchResponse
		for j, m := range modes {
			resp, err := client.Sketch(digest, warmSketch(m))
			if err != nil {
				log.Fatalf("qload: priming sketch (mode %q): %v", m, err)
			}
			if j == 0 {
				ref = resp
				continue
			}
			if resp.Den != ref.Den || !reflect.DeepEqual(resp.Eccentricities, ref.Eccentricities) {
				log.Fatalf("qload: FAILED — kernel mode %q answered different numerators than mode %q for the same digest+params", m, modes[0])
			}
		}
	}

	var (
		next                     atomic.Int64
		err4, err5, sat, limited atomic.Int64
		deadline                 time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	stop := func(i int64) bool {
		if *duration > 0 {
			return time.Now().After(deadline)
		}
		return i >= int64(*requests)
	}

	// coldSketch derives a distinct source set (hence a distinct cache
	// key) from the request index; kernel modes round-robin.
	coldSketch := func(i int64) svc.SketchRequest {
		base := int(i % int64(*n))
		return svc.SketchRequest{
			Sources: []int{base, (base + 7) % *n, (base + 13) % *n},
			L:       8,
			K:       3,
			Kernel:  modes[int(i)%len(modes)],
		}
	}

	oneRequest := func(i int64) error {
		kind := i % 10
		switch *mix {
		case "cold":
			_, err := client.Sketch(digest, coldSketch(i))
			return err
		case "mixed":
			if kind < 2 {
				_, err := client.Sketch(digest, coldSketch(i))
				return err
			}
		}
		switch kind % 4 {
		case 0:
			_, err := client.Diameter(digest)
			return err
		case 1:
			_, err := client.Radius(digest)
			return err
		case 2:
			_, err := client.Eccentricity(digest, int(i)%*n)
			return err
		default:
			// Round-robin the primed modes: every requested engine's
			// cache line stays hot under the warm mix.
			_, err := client.Sketch(digest, warmSketch(modes[int(i)%len(modes)]))
			return err
		}
	}

	latencies := make([][]time.Duration, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if stop(i) {
					return
				}
				t0 := time.Now()
				err := oneRequest(i)
				latencies[w] = append(latencies[w], time.Since(t0))
				var se *svc.StatusError
				if errors.As(err, &se) {
					switch {
					case se.Code == 503:
						sat.Add(1)
					case se.Code == 429:
						// Back-pressure, not breakage: the daemon shed this
						// key's overflow exactly as configured.
						limited.Add(1)
					case se.Code >= 500:
						err5.Add(1)
					default:
						err4.Add(1)
					}
				} else if err != nil {
					err5.Add(1) // transport failure: treat as a server-side loss
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(q * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}

	rep := report{
		Mix:             *mix,
		Concurrency:     *conc,
		Requests:        int64(len(all)),
		Errors4xx:       err4.Load(),
		Errors5xx:       err5.Load(),
		Saturated503:    sat.Load(),
		RateLimited429:  limited.Load(),
		DurationSeconds: elapsed.Seconds(),
		QPS:             float64(len(all)) / elapsed.Seconds(),
		P50Ms:           quantile(0.50),
		P99Ms:           quantile(0.99),
	}
	if m, err := client.Metrics(); err == nil {
		rep.CacheHitRate = m.Cache.HitRate
	}

	fmt.Printf("qload %s: %d requests in %.2fs — %.1f qps, p50 %.3fms, p99 %.3fms (4xx=%d 5xx=%d 503=%d 429=%d, cache hit rate %.3f)\n",
		rep.Mix, rep.Requests, rep.DurationSeconds, rep.QPS, rep.P50Ms, rep.P99Ms,
		rep.Errors4xx, rep.Errors5xx, rep.Saturated503, rep.RateLimited429, rep.CacheHitRate)

	if *out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("qload: writing %s: %v", *out, err)
		}
	}
	success := rep.Requests - rep.Errors4xx - rep.Errors5xx - rep.Saturated503 - rep.RateLimited429
	if rep.Errors5xx > 0 {
		log.Fatalf("qload: FAILED — %d requests drew 5xx", rep.Errors5xx)
	}
	if success <= 0 {
		log.Fatalf("qload: FAILED — no request succeeded")
	}
}

// waitHealthy polls /healthz until the daemon answers ok (the CI smoke
// starts qload right after the daemon process).
func waitHealthy(c *svc.Client) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health()
		if err == nil && h.Status == "ok" {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("qload: daemon never became healthy: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
