// Command qdiam runs the paper's quantum CONGEST algorithm (Theorem 1.1)
// on a generated weighted network and reports the estimate, the exact
// value, and the full round ledger.
//
// Usage:
//
//	qdiam -n 200 -d 8 -w 16 -mode diameter -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qcongest/internal/core"
	"qcongest/internal/graph"
)

func main() {
	var (
		n    = flag.Int("n", 200, "number of nodes")
		d    = flag.Int("d", 0, "target unweighted diameter (0 = low-diameter random graph)")
		w    = flag.Int64("w", 16, "maximum edge weight")
		mode = flag.String("mode", "diameter", "diameter or radius")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	m := core.DiameterMode
	if *mode == "radius" {
		m = core.RadiusMode
	} else if *mode != "diameter" {
		fmt.Fprintf(os.Stderr, "qdiam: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	if *d > 0 {
		g = graph.DiameterControlled(*n, *d, rng)
	} else {
		g = graph.LowDiameterExpanderish(*n, 4, rng)
	}
	g = graph.RandomWeights(g, *w, rng)

	var truth int64
	if m == core.DiameterMode {
		truth = g.Diameter()
	} else {
		truth = g.Radius()
	}

	res, err := core.Approximate(g, m, core.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdiam: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("network       %s, unweighted D = %d\n", g, res.Params.D)
	fmt.Printf("parameters    %s\n", res.Params)
	fmt.Printf("mode          %s\n", res.Mode)
	fmt.Printf("estimate      %.3f  (= %d/%d, witness node %d in set %d)\n",
		res.Estimate, res.Num, res.Den, res.Witness, res.Index)
	fmt.Printf("exact value   %d\n", truth)
	fmt.Printf("ratio         %.5f  (bound (1+ε)² = %.5f)\n",
		res.Estimate/float64(truth),
		(1+res.Params.Eps.Float())*(1+res.Params.Eps.Float()))
	fmt.Printf("rounds        %d measured  (Lemma 3.1 budget %d)\n", res.Rounds, res.BudgetRounds)
	fmt.Printf("theorem bound min{n^0.9·D^0.3, n} = %.0f\n", res.TheoremBound)
	fmt.Printf("search ledger %d outer iterations, %d outer evaluations, %d sets evaluated\n",
		res.OuterIterations, res.OuterEvaluations, res.SetsEvaluated)
}
