// Distance-kernel benchmarks: skeleton construction and the end-to-end
// experiment drivers it dominates (the BENCH_dist.json artifact).
package qcongest_test

import (
	"math/rand"
	"testing"

	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/graph"
)

// skeletonWorkload is the fixed BENCH_dist.json workload: a random
// connected graph with m = 4n weighted edges, 64 skeleton sources,
// hop budget 64, k = 3, ε = EpsForN(n).
func skeletonWorkload(n int) (*graph.Graph, []int, dist.Eps) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomWeights(graph.RandomConnected(n, 4*n, rng), 12, rng)
	var s []int
	for v := 0; v < g.N(); v += g.N() / 64 {
		s = append(s, v)
	}
	return g, s, dist.EpsForN(g.N())
}

// benchBuildSkeleton measures the steady-state single-thread build: the
// skeleton is released after each build, so the pooled arena
// (graph.DistWorkspace, flat rows, overlay scratch) is recycled exactly
// as the serving layer and the core evaluator recycle it.
func benchBuildSkeleton(b *testing.B, n, workers int) {
	g, s, eps := skeletonWorkload(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := dist.BuildSkeletonWith(g, s, 64, 3, eps, dist.BuildSkeletonOpts{Workers: workers})
		sk.Release()
	}
}

func BenchmarkBuildSkeletonN512(b *testing.B)  { benchBuildSkeleton(b, 512, 1) }
func BenchmarkBuildSkeletonN1024(b *testing.B) { benchBuildSkeleton(b, 1024, 1) }

func BenchmarkBuildSkeletonN1024Workers4(b *testing.B) { benchBuildSkeleton(b, 1024, 4) }

// benchEDriver is the end-to-end E-driver wall clock of BENCH_dist.json:
// one full Theorem 1.1 diameter approximation (the E2 driver point) on
// the same workload family, with a bounded set count so the run is
// dominated by skeleton construction rather than the outer search.
func benchEDriver(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(int64(n)))
	g := graph.RandomWeights(graph.DiameterControlled(n, 6, rng), 16, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Approximate(g, core.DiameterMode, core.Options{Seed: 1, Sets: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEDriverN512(b *testing.B)  { benchEDriver(b, 512) }
func BenchmarkEDriverN1024(b *testing.B) { benchEDriver(b, 1024) }
