module qcongest

go 1.21
