// Kernel-mode benchmarks: the BENCH_kernel.json artifact. Every
// relaxation engine (sparse push / dense pull / delta-stepping, plus
// the auto switcher) builds the same skeletons byte-identically — these
// rows record what each one costs, on the workload family where the
// differences show: high-degree graphs whose frontiers saturate within
// a few hops (dense pull territory) versus the sparse-frontier regimes
// the PR 3 push kernel was tuned for.
package qcongest_test

import (
	"fmt"
	"math/rand"
	"testing"

	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/graph"
)

// kernelWorkload is the fixed BENCH_kernel.json build workload: a
// high-degree low-diameter graph (avg degree 16) whose frontier covers
// most of the graph from hop 2 on, weighted so every scale pass of the
// skeleton build exercises the rounded-weight path. 64 sources, hop
// budget 64, k = 2, ε = EpsForN(n) — the same shape as the PR 3
// skeletonWorkload but in the regime where engine choice matters.
func kernelWorkload(n int) (*graph.Graph, []int, dist.Eps) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomWeights(graph.LowDiameterExpanderish(n, 16, rng), 16, rng)
	var s []int
	for v := 0; v < g.N(); v += g.N() / 64 {
		s = append(s, v)
	}
	return g, s, dist.EpsForN(g.N())
}

// benchKernelBuild is the steady-state pooled build (arena recycled via
// Release, exactly as the serving layer recycles it) with the engine
// pinned through BuildSkeletonOpts.Kernel.
func benchKernelBuild(b *testing.B, n int, mode graph.KernelMode) {
	g, s, eps := kernelWorkload(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := dist.BuildSkeletonWith(g, s, 64, 2, eps, dist.BuildSkeletonOpts{Workers: 1, Kernel: mode})
		sk.Release()
	}
}

func BenchmarkKernelBuild(b *testing.B) {
	for _, n := range []int{1024, 8192, 32768} {
		for _, mode := range graph.KernelModes() {
			b.Run(fmt.Sprintf("N%d/%s", n, mode), func(b *testing.B) {
				benchKernelBuild(b, n, mode)
			})
		}
	}
}

// BenchmarkKernelEDriver is one full Theorem 1.1 diameter approximation
// (the E2 driver point, Sets=8) per engine — the end-to-end number a
// -distkernel flag flip changes for cmd/sweep and cmd/table1.
func BenchmarkKernelEDriver(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomWeights(graph.DiameterControlled(n, 6, rng), 16, rng)
		for _, mode := range graph.KernelModes() {
			b.Run(fmt.Sprintf("N%d/%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Approximate(g, core.DiameterMode, core.Options{Seed: 1, Sets: 8, Kernel: mode}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelBFS isolates the unweighted traversal: the
// direction-optimizing (top-down/bottom-up) BFS versus the verbatim
// PR 3 single-queue BFS, on the high-degree expander whose middle
// levels cover most of the graph — the shape bottom-up pulling exists
// for. This is the inner loop of UnweightedDiameter/UnweightedRadius
// (the paper's D parameter), so the per-call ratio is the all-pairs
// driver ratio.
func BenchmarkKernelBFS(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		rng := rand.New(rand.NewSource(9))
		g := graph.LowDiameterExpanderish(n, 16, rng)
		ws := graph.NewDistWorkspace(g)
		dst := make([]int64, g.N())
		for _, mode := range []graph.KernelMode{graph.KernelSparse, graph.KernelAuto} {
			b.Run(fmt.Sprintf("N%d/%s", n, mode), func(b *testing.B) {
				ws.SetKernelMode(mode)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ws.BFSInto(dst, i%g.N())
				}
			})
		}
	}
}

// BenchmarkKernelDijkstra pins the single-source weighted query — the
// inner loop of HopDiameter and the exact-metric memo — where delta
// mode replaces the binary heap with bucket draining.
func BenchmarkKernelDijkstra(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		rng := rand.New(rand.NewSource(9))
		g := graph.RandomWeights(graph.LowDiameterExpanderish(n, 16, rng), 16, rng)
		ws := graph.NewDistWorkspace(g)
		var d, h []int64
		for _, mode := range []graph.KernelMode{graph.KernelSparse, graph.KernelDelta} {
			b.Run(fmt.Sprintf("N%d/%s", n, mode), func(b *testing.B) {
				ws.SetKernelMode(mode)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, h = ws.DijkstraHopsInto(d, h, i%g.N())
				}
			})
		}
	}
}
